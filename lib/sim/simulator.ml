module Circuit = Netlist.Circuit
module Gate = Netlist.Gate

let check_inputs c pis =
  if Array.length pis <> Circuit.num_inputs c then
    invalid_arg
      (Printf.sprintf "Simulator: %d input values for %d inputs"
         (Array.length pis) (Circuit.num_inputs c))

(* The two sweeps are deliberately monomorphic copies: a shared
   higher-order [sweep ~eval_kind] would box the evaluation closure and
   defeat the indexed fast paths. *)

let sweep_bools (c : Circuit.t) values pis =
  Array.iteri (fun i g -> values.(g) <- pis.(i)) c.Circuit.inputs;
  Array.iter
    (fun g ->
      match c.Circuit.kinds.(g) with
      | Gate.Input -> ()
      | k -> values.(g) <- Gate.eval_indexed k values c.Circuit.fanins.(g))
    c.Circuit.topo

let sweep_words (c : Circuit.t) values pis =
  Array.iteri (fun i g -> values.(g) <- pis.(i)) c.Circuit.inputs;
  Array.iter
    (fun g ->
      match c.Circuit.kinds.(g) with
      | Gate.Input -> ()
      | k ->
          values.(g) <- Gate.eval_word_indexed k values c.Circuit.fanins.(g))
    c.Circuit.topo

let eval_into ~values c pis =
  check_inputs c pis;
  if Array.length values <> Circuit.size c then
    invalid_arg "Simulator.eval_into: values buffer size mismatch";
  sweep_bools c values pis

let eval_word_into ~values c pis =
  check_inputs c pis;
  if Array.length values <> Circuit.size c then
    invalid_arg "Simulator.eval_word_into: values buffer size mismatch";
  sweep_words c values pis

let eval c pis =
  check_inputs c pis;
  let values = Array.make (Circuit.size c) false in
  sweep_bools c values pis;
  values

let outputs c pis =
  let values = eval c pis in
  Array.map (fun g -> values.(g)) c.Circuit.outputs

let eval_word c pis =
  check_inputs c pis;
  let values = Array.make (Circuit.size c) 0L in
  sweep_words c values pis;
  values

let outputs_word c pis =
  let values = eval_word c pis in
  Array.map (fun g -> values.(g)) c.Circuit.outputs

let eval_ctx ctx c pis =
  Sim_ctx.check ctx c;
  check_inputs c pis;
  let values = Sim_ctx.bools ctx in
  sweep_bools c values pis;
  values

let eval_word_ctx ctx c pis =
  Sim_ctx.check ctx c;
  check_inputs c pis;
  let values = Sim_ctx.words ctx in
  sweep_words c values pis;
  values
