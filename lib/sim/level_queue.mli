(** Bucket worklist indexed by circuit level: gates pop in level order,
    each scheduled at most once at a time.  Shared by the event-driven
    engines. *)

type t

val create : depth:int -> size:int -> t
val push : t -> level:int -> int -> unit
val pop : t -> int option

val clear : t -> unit
(** Drop any still-queued gates and reset the scheduled flags, making the
    queue ready for reuse without reallocating its buckets.  Cost is
    proportional to the leftover content (zero for a drained queue). *)
