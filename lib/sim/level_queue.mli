(** Bucket worklist indexed by circuit level: gates pop in level order,
    each scheduled at most once at a time.  Shared by the event-driven
    engines. *)

type t

val create : depth:int -> size:int -> t
val push : t -> level:int -> int -> unit
val pop : t -> int option
