(** Full-circuit logic simulation.

    Two engines: single-pattern over [bool] and 64-way parallel-pattern
    over [int64] (bit [i] of every word belongs to pattern [i]).  Both run
    in one topological sweep — the linear-time engine the paper attributes
    to simulation-based diagnosis. *)

val eval : Netlist.Circuit.t -> bool array -> bool array
(** [eval c pis] returns the value of every gate.  [pis] follows the
    circuit's input order.  @raise Invalid_argument on length mismatch. *)

val outputs : Netlist.Circuit.t -> bool array -> bool array
(** Just the primary output values, in output order. *)

val eval_word : Netlist.Circuit.t -> int64 array -> int64 array
(** 64 patterns at once; [pis.(i)] packs pattern bits for input [i]. *)

val outputs_word : Netlist.Circuit.t -> int64 array -> int64 array
