(** Full-circuit logic simulation.

    Two engines: single-pattern over [bool] and 64-way parallel-pattern
    over [int64] (bit [i] of every word belongs to pattern [i]).  Both run
    in one topological sweep — the linear-time engine the paper attributes
    to simulation-based diagnosis.  Sweeps are allocation-free per gate
    (fanin values are read in place, see {!Netlist.Gate.eval_indexed});
    the [*_ctx] entry points also reuse the whole value buffer via
    {!Sim_ctx}, making repeated sweeps allocation-free end-to-end. *)

val eval : Netlist.Circuit.t -> bool array -> bool array
(** [eval c pis] returns the value of every gate.  [pis] follows the
    circuit's input order.  @raise Invalid_argument on length mismatch. *)

val outputs : Netlist.Circuit.t -> bool array -> bool array
(** Just the primary output values, in output order. *)

val eval_word : Netlist.Circuit.t -> int64 array -> int64 array
(** 64 patterns at once; [pis.(i)] packs pattern bits for input [i]. *)

val outputs_word : Netlist.Circuit.t -> int64 array -> int64 array

val eval_into : values:bool array -> Netlist.Circuit.t -> bool array -> unit
(** Sweep into a caller-supplied buffer of size [Circuit.size c] (every
    slot is overwritten; the buffer need not be cleared between calls).
    @raise Invalid_argument on buffer or input length mismatch. *)

val eval_word_into :
  values:int64 array -> Netlist.Circuit.t -> int64 array -> unit

val eval_ctx : Sim_ctx.t -> Netlist.Circuit.t -> bool array -> bool array
(** Sweep into the context's scalar buffer and return it.  The result
    aliases the context: it is invalidated by the next call using the
    same context (see the {!Sim_ctx} contract). *)

val eval_word_ctx :
  Sim_ctx.t -> Netlist.Circuit.t -> int64 array -> int64 array
(** Word-parallel analogue of {!eval_ctx}, using the context's [words]
    buffer. *)
