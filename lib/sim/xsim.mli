(** Three-valued (0/1/X) simulation.

    Substrate for the X-list style diagnosis of Boppana et al. referenced
    in the paper's §2.2: injecting an unknown at a gate and checking by
    forward implication whether the erroneous output could be affected. *)

type v = F | T | X

val of_bool : bool -> v
val equal : v -> v -> bool
val pp : Format.formatter -> v -> unit

val eval_kind : Netlist.Gate.kind -> v array -> v
(** Pessimistic three-valued gate evaluation (controlling values dominate
    X; otherwise any X fanin makes the output X). *)

val eval_kind_indexed : Netlist.Gate.kind -> v array -> int array -> v
(** [eval_kind_indexed k values fanins] — same function, reading fanin
    values as [values.(fanins.(i))] without building an argument array.
    Arity is trusted (circuit invariants guarantee it). *)

val eval : Netlist.Circuit.t -> v array -> v array
(** Topological sweep over three-valued inputs. *)

val with_x_at : Netlist.Circuit.t -> bool array -> int list -> v array
(** [with_x_at c pis gates] simulates the Boolean vector [pis] but forces
    every gate in [gates] to X, propagating unknowns forward. *)
