module Circuit = Netlist.Circuit

type t = {
  size : int;
  bools : bool array;
  words : int64 array;
  words2 : int64 array;
  queue : Level_queue.t;
}

let create (c : Circuit.t) =
  let size = Circuit.size c in
  {
    size;
    bools = Array.make size false;
    words = Array.make size 0L;
    words2 = Array.make size 0L;
    queue = Level_queue.create ~depth:(Circuit.depth c) ~size;
  }

let size t = t.size

let check t (c : Circuit.t) =
  if Circuit.size c <> t.size then
    invalid_arg
      (Printf.sprintf "Sim_ctx: context for %d nodes used on %d-node circuit"
         t.size (Circuit.size c))

let bools t = t.bools
let words t = t.words
let words2 t = t.words2

let queue t =
  Level_queue.clear t.queue;
  t.queue
