(** Test-set generation (Definition 1 of the paper).

    A test is a triple (t, o, v): an input vector [t] that produces an
    erroneous value on primary output [o] of the faulty implementation,
    together with the correct value [v] for that output.  A vector failing
    several outputs contributes one triple per failing output. *)

type test = {
  vector : bool array;   (** primary input values, circuit input order *)
  po_index : int;        (** index into the circuit's output vector *)
  expected : bool;       (** the correct value v for that output *)
}

val pp : Format.formatter -> test -> unit

val response : Netlist.Circuit.t -> test -> bool
(** What the given circuit actually drives on the test's output. *)

val fails : Netlist.Circuit.t -> test -> bool
(** [true] when the circuit violates the test ([response <> expected]). *)

val generate :
  seed:int ->
  max_vectors:int ->
  wanted:int ->
  golden:Netlist.Circuit.t ->
  faulty:Netlist.Circuit.t ->
  test list
(** Draw random vectors (64 at a time, compared with the parallel-pattern
    simulator), keep every (vector, failing output) pair until [wanted]
    triples are found or [max_vectors] vectors were tried.  The returned
    list is deterministic in [seed] and ordered by discovery, so a prefix
    of length m is "a part of the same test-set" as in the paper's
    experiments. *)

val exhaustive :
  golden:Netlist.Circuit.t -> faulty:Netlist.Circuit.t -> test list
(** All failing triples over the full input space — only for circuits with
    at most 20 inputs.  Used by tests and the small paper examples. *)

val from_vectors :
  golden:Netlist.Circuit.t -> faulty:Netlist.Circuit.t ->
  bool array list -> test list
(** Failing triples of the given vectors (e.g. an ATPG-generated or
    manufacturing test set), in vector order. *)

val split_entropy : total:int -> killed:int -> float
(** Information gained by a test that splits [total] surviving diagnosis
    candidates into [killed] invalidated and [total - killed] surviving
    ones: the binary entropy (in bits) of the partition, maximal
    ([1.0]) at an even split and [0.0] when nothing (or everything) is
    killed.  The adaptive test-selection loop ranks candidate vectors by
    this score (halving the survivor lattice first).
    @raise Invalid_argument when [killed] is outside [0..total]. *)
