module Circuit = Netlist.Circuit

type test = {
  vector : bool array;
  po_index : int;
  expected : bool;
}

let pp ppf t =
  let bits =
    String.init (Array.length t.vector) (fun i ->
        if t.vector.(i) then '1' else '0')
  in
  Format.fprintf ppf "t=%s o=#%d v=%b" bits t.po_index t.expected

let response c t =
  let outs = Simulator.outputs c t.vector in
  outs.(t.po_index)

let fails c t = response c t <> t.expected

let bit word i = Int64.logand (Int64.shift_right_logical word i) 1L = 1L

(* Compare golden and faulty on one 64-pattern batch; cons failing triples
   (in pattern-then-output order) onto [acc]. *)
let collect_batch ~golden ~faulty words acc =
  let og = Simulator.outputs_word golden words in
  let ofa = Simulator.outputs_word faulty words in
  let num_inputs = Array.length words in
  let acc = ref acc in
  for p = 0 to 63 do
    for o = 0 to Array.length og - 1 do
      let gv = bit og.(o) p and fv = bit ofa.(o) p in
      if gv <> fv then begin
        let vector = Array.init num_inputs (fun i -> bit words.(i) p) in
        acc := { vector; po_index = o; expected = gv } :: !acc
      end
    done
  done;
  !acc

let generate ~seed ~max_vectors ~wanted ~golden ~faulty =
  if Circuit.num_inputs golden <> Circuit.num_inputs faulty
     || Circuit.num_outputs golden <> Circuit.num_outputs faulty then
    invalid_arg "Testgen.generate: interface mismatch";
  let rng = Random.State.make [| seed; 0x7e57 |] in
  let num_inputs = Circuit.num_inputs golden in
  let rec loop tried acc =
    if List.length acc >= wanted || tried >= max_vectors then List.rev acc
    else
      let words = Array.init num_inputs (fun _ -> Random.State.int64 rng Int64.max_int) in
      (* int64 leaves bit 63 biased; fix it with an extra coin per input *)
      let words =
        Array.map
          (fun w ->
            if Random.State.bool rng then Int64.logor w Int64.min_int else w)
          words
      in
      loop (tried + 64) (collect_batch ~golden ~faulty words acc)
  in
  let all = loop 0 [] in
  List.filteri (fun i _ -> i < wanted) all

let from_vectors ~golden ~faulty vectors =
  let acc = ref [] in
  List.iter
    (fun vector ->
      let og = Simulator.outputs golden vector in
      let ofa = Simulator.outputs faulty vector in
      Array.iteri
        (fun o gv ->
          if gv <> ofa.(o) then
            acc := { vector; po_index = o; expected = gv } :: !acc)
        og)
    vectors;
  List.rev !acc

let split_entropy ~total ~killed =
  if killed < 0 || killed > total then
    invalid_arg "Testgen.split_entropy: killed outside 0..total";
  if total = 0 || killed = 0 || killed = total then 0.0
  else begin
    let p = float_of_int killed /. float_of_int total in
    let h x = -.x *. (Float.log x /. Float.log 2.0) in
    h p +. h (1.0 -. p)
  end

let exhaustive ~golden ~faulty =
  let num_inputs = Circuit.num_inputs golden in
  if num_inputs > 20 then invalid_arg "Testgen.exhaustive: too many inputs";
  let total = 1 lsl num_inputs in
  let acc = ref [] in
  for v = 0 to total - 1 do
    let vector = Array.init num_inputs (fun i -> (v lsr i) land 1 = 1) in
    let og = Simulator.outputs golden vector in
    let ofa = Simulator.outputs faulty vector in
    Array.iteri
      (fun o gv ->
        if gv <> ofa.(o) then
          acc := { vector; po_index = o; expected = gv } :: !acc)
      og
  done;
  List.rev !acc
