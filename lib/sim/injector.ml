module Circuit = Netlist.Circuit
module Gate = Netlist.Gate

let inject ~seed ~num_errors c =
  let rng = Random.State.make [| seed; num_errors; Circuit.size c |] in
  let observable =
    Netlist.Structural.fanin_cone c (Array.to_list c.Circuit.outputs)
  in
  let eligible =
    Circuit.gate_ids c |> Array.to_list
    |> List.filter (fun g ->
           observable.(g)
           && Gate.alternatives c.Circuit.kinds.(g)
                ~arity:(Array.length c.Circuit.fanins.(g))
              <> [])
  in
  let eligible = Array.of_list eligible in
  if Array.length eligible < num_errors then
    invalid_arg
      (Printf.sprintf "Injector.inject: only %d eligible gates for %d errors"
         (Array.length eligible) num_errors);
  (* Fisher-Yates prefix shuffle to pick distinct gates. *)
  let n = Array.length eligible in
  for i = 0 to num_errors - 1 do
    let j = i + Random.State.int rng (n - i) in
    let t = eligible.(i) in
    eligible.(i) <- eligible.(j);
    eligible.(j) <- t
  done;
  let pick_replacement g =
    let kinds =
      Gate.alternatives c.Circuit.kinds.(g)
        ~arity:(Array.length c.Circuit.fanins.(g))
    in
    List.nth kinds (Random.State.int rng (List.length kinds))
  in
  let errors =
    List.init num_errors (fun i ->
        let g = eligible.(i) in
        { Fault.gate = g;
          original = c.Circuit.kinds.(g);
          replacement = pick_replacement g })
  in
  (Fault.apply c errors, errors)
