(** Parallel-pattern single-stuck-at fault simulation.

    64 test patterns are simulated at once; for each fault, an
    event-driven word-level propagation from the fault site yields the
    set of patterns that detect it (observe a difference on some primary
    output).  This is the classical engine behind test grading and fault
    dictionaries — the production-test side of the paper's diagnosis
    problem. *)

val detection_mask :
  ?ctx:Sim_ctx.t ->
  Netlist.Circuit.t -> good:int64 array -> Stuck_at.fault -> int64
(** [detection_mask c ~good f] — bit [i] is set when pattern [i] of the
    batch detects [f].  [good] must come from
    [Simulator.eval_word c inputs].  With [?ctx], the faulty-value scratch
    buffer ([Sim_ctx.words2]) and the event queue are reused instead of
    allocated per call; [good] must not alias the context's [words2]
    buffer. *)

val first_bit : int64 -> int
(** Index of the least-significant set bit (constant-time, De Bruijn
    multiply).  @raise Not_found on [0L]. *)

type run = {
  detected : (Stuck_at.fault * int) list;
      (** fault, index of the first detecting vector *)
  undetected : Stuck_at.fault list;
  coverage : float;
}

val run :
  ?drop:bool ->
  ?obs:Obs.t ->
  ?jobs:int ->
  Netlist.Circuit.t ->
  vectors:bool array list ->
  faults:Stuck_at.fault list ->
  run
(** Simulate a vector set against a fault list (64 vectors per pass).
    [drop] (default true) removes a fault from further simulation after
    its first detection — standard fault dropping.  [obs] fills a
    ["fault_sim/drops_per_sweep"] histogram with the number of
    newly-detected faults per 64-vector sweep.

    [jobs] (default 1) shards the fault list round-robin over that many
    domains, each sweeping the vectors with its own [Sim_ctx].  A
    fault's detection mask is independent of every other fault, so the
    merged result — [detected] order, first-detection indices,
    [undetected], [coverage] and the per-sweep histogram — is
    bit-identical to the [jobs = 1] run for every [drop] setting. *)

val signature :
  Netlist.Circuit.t -> vectors:bool array array -> Stuck_at.fault ->
  (int * int) list
(** Full-response signature: the sorted (vector index, output index)
    pairs on which the fault shows — the dictionary entry. *)
