module Circuit = Netlist.Circuit
module Gate = Netlist.Gate

type v = F | T | X

let of_bool b = if b then T else F
let equal (a : v) (b : v) = a = b

let pp ppf = function
  | F -> Format.pp_print_char ppf '0'
  | T -> Format.pp_print_char ppf '1'
  | X -> Format.pp_print_char ppf 'X'

let vnot = function F -> T | T -> F | X -> X

let fold_and vs =
  let any_x = ref false in
  let any_f = ref false in
  Array.iter (function F -> any_f := true | X -> any_x := true | T -> ()) vs;
  if !any_f then F else if !any_x then X else T

let fold_or vs =
  let any_x = ref false in
  let any_t = ref false in
  Array.iter (function T -> any_t := true | X -> any_x := true | F -> ()) vs;
  if !any_t then T else if !any_x then X else F

let fold_xor vs =
  let any_x = ref false in
  let parity = ref false in
  Array.iter
    (function T -> parity := not !parity | X -> any_x := true | F -> ())
    vs;
  if !any_x then X else of_bool !parity

let eval_kind k (vs : v array) =
  if not (Gate.arity_ok k (Array.length vs)) then
    invalid_arg "Xsim.eval_kind: bad arity";
  match k with
  | Gate.Input -> invalid_arg "Xsim.eval_kind: Input has no function"
  | Gate.Const0 -> F
  | Gate.Const1 -> T
  | Gate.Buf -> vs.(0)
  | Gate.Not -> vnot vs.(0)
  | Gate.And -> fold_and vs
  | Gate.Nand -> vnot (fold_and vs)
  | Gate.Or -> fold_or vs
  | Gate.Nor -> vnot (fold_or vs)
  | Gate.Xor -> fold_xor vs
  | Gate.Xnor -> vnot (fold_xor vs)

(* Indexed folds over the fanin id array: values are read in place, no
   argument array is built.  Semantics match the [fold_*] helpers above. *)

let fold_and_indexed (values : v array) (fanins : int array) =
  let any_x = ref false in
  let any_f = ref false in
  for i = 0 to Array.length fanins - 1 do
    match values.(fanins.(i)) with
    | F -> any_f := true
    | X -> any_x := true
    | T -> ()
  done;
  if !any_f then F else if !any_x then X else T

let fold_or_indexed (values : v array) (fanins : int array) =
  let any_x = ref false in
  let any_t = ref false in
  for i = 0 to Array.length fanins - 1 do
    match values.(fanins.(i)) with
    | T -> any_t := true
    | X -> any_x := true
    | F -> ()
  done;
  if !any_t then T else if !any_x then X else F

let fold_xor_indexed (values : v array) (fanins : int array) =
  let any_x = ref false in
  let parity = ref false in
  for i = 0 to Array.length fanins - 1 do
    match values.(fanins.(i)) with
    | T -> parity := not !parity
    | X -> any_x := true
    | F -> ()
  done;
  if !any_x then X else of_bool !parity

let eval_kind_indexed k (values : v array) (fanins : int array) =
  match k with
  | Gate.Input -> invalid_arg "Xsim.eval_kind_indexed: Input has no function"
  | Gate.Const0 -> F
  | Gate.Const1 -> T
  | Gate.Buf -> values.(fanins.(0))
  | Gate.Not -> vnot values.(fanins.(0))
  | Gate.And -> fold_and_indexed values fanins
  | Gate.Nand -> vnot (fold_and_indexed values fanins)
  | Gate.Or -> fold_or_indexed values fanins
  | Gate.Nor -> vnot (fold_or_indexed values fanins)
  | Gate.Xor -> fold_xor_indexed values fanins
  | Gate.Xnor -> vnot (fold_xor_indexed values fanins)

let eval (c : Circuit.t) pis =
  if Array.length pis <> Circuit.num_inputs c then
    invalid_arg "Xsim.eval: input length mismatch";
  let values = Array.make (Circuit.size c) X in
  Array.iteri (fun i g -> values.(g) <- pis.(i)) c.inputs;
  Array.iter
    (fun g ->
      match c.kinds.(g) with
      | Gate.Input -> ()
      | k -> values.(g) <- eval_kind_indexed k values c.fanins.(g))
    c.topo;
  values

let with_x_at (c : Circuit.t) pis gates =
  if Array.length pis <> Circuit.num_inputs c then
    invalid_arg "Xsim.with_x_at: input length mismatch";
  let forced = Hashtbl.create 8 in
  List.iter (fun g -> Hashtbl.replace forced g ()) gates;
  let values = Array.make (Circuit.size c) X in
  Array.iteri (fun i g -> values.(g) <- of_bool pis.(i)) c.inputs;
  Array.iter
    (fun g ->
      if Hashtbl.mem forced g then values.(g) <- X
      else
        match c.kinds.(g) with
        | Gate.Input -> ()
        | k -> values.(g) <- eval_kind_indexed k values c.fanins.(g))
    c.topo;
  values
