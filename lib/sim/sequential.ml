type t = {
  name : string;
  comb : Netlist.Circuit.t;
  primary_inputs : int array;
  primary_outputs : int array;
  state_q : int array;
  state_d : int array;
}

let of_circuit comb ~dff_pairs =
  let q_ids =
    Array.of_list (List.map (fun (q, _) -> Netlist.Circuit.id_of_name comb q) dff_pairs)
  in
  let d_ids =
    Array.of_list (List.map (fun (_, d) -> Netlist.Circuit.id_of_name comb d) dff_pairs)
  in
  let is_q = Hashtbl.create 16 in
  Array.iter (fun g -> Hashtbl.replace is_q g ()) q_ids;
  let is_d = Hashtbl.create 16 in
  Array.iter (fun g -> Hashtbl.replace is_d g ()) d_ids;
  let primary_inputs =
    Array.of_seq
      (Seq.filter
         (fun g -> not (Hashtbl.mem is_q g))
         (Array.to_seq comb.Netlist.Circuit.inputs))
  in
  let primary_outputs =
    Array.of_seq
      (Seq.filter
         (fun g -> not (Hashtbl.mem is_d g))
         (Array.to_seq comb.Netlist.Circuit.outputs))
  in
  {
    name = comb.Netlist.Circuit.name;
    comb;
    primary_inputs;
    primary_outputs;
    state_q = q_ids;
    state_d = d_ids;
  }

let of_parsed (p : Netlist.Bench_format.parsed) =
  of_circuit p.Netlist.Bench_format.circuit ~dff_pairs:p.Netlist.Bench_format.dff_pairs

let num_state s = Array.length s.state_q
let num_inputs s = Array.length s.primary_inputs
let num_outputs s = Array.length s.primary_outputs

let with_comb s comb =
  if Netlist.Circuit.size comb <> Netlist.Circuit.size s.comb then
    invalid_arg "Sequential.with_comb: interface mismatch";
  { s with comb }

type unrolled = {
  circuit : Netlist.Circuit.t;
  frames : int;
  input_of : frame:int -> pi:int -> int;
  output_of : frame:int -> po:int -> int;
  gate_of : frame:int -> int -> int;
}

let unroll ?init s ~frames =
  if frames <= 0 then invalid_arg "Sequential.unroll: frames";
  let init =
    match init with
    | Some a ->
        if Array.length a <> num_state s then
          invalid_arg "Sequential.unroll: init length";
        a
    | None -> Array.make (num_state s) false
  in
  let comb = s.comb in
  let n = Netlist.Circuit.size comb in
  let total = frames * n in
  let id f g = (f * n) + g in
  (* which state register an input gate belongs to, if any *)
  let state_index = Hashtbl.create 16 in
  Array.iteri (fun j q -> Hashtbl.replace state_index q j) s.state_q;
  let kinds = Array.make total Netlist.Gate.Input in
  let fanins = Array.make total [||] in
  let names = Array.make total "" in
  for f = 0 to frames - 1 do
    for g = 0 to n - 1 do
      let u = id f g in
      names.(u) <- Printf.sprintf "%s@%d" comb.Netlist.Circuit.names.(g) f;
      match comb.Netlist.Circuit.kinds.(g) with
      | Netlist.Gate.Input -> (
          match Hashtbl.find_opt state_index g with
          | None -> kinds.(u) <- Netlist.Gate.Input
          | Some j ->
              if f = 0 then
                kinds.(u) <- (if init.(j) then Netlist.Gate.Const1 else Netlist.Gate.Const0)
              else begin
                kinds.(u) <- Netlist.Gate.Buf;
                fanins.(u) <- [| id (f - 1) s.state_d.(j) |]
              end)
      | k ->
          kinds.(u) <- k;
          fanins.(u) <- Array.map (id f) comb.Netlist.Circuit.fanins.(g)
    done
  done;
  let inputs =
    Array.concat
      (List.init frames (fun f -> Array.map (id f) s.primary_inputs))
  in
  let outputs =
    Array.concat
      (List.init frames (fun f -> Array.map (id f) s.primary_outputs))
  in
  let circuit =
    Netlist.Circuit.create
      ~name:(Printf.sprintf "%s_x%d" s.name frames)
      ~kinds ~fanins ~names ~inputs ~outputs
  in
  {
    circuit;
    frames;
    input_of = (fun ~frame ~pi -> (frame * num_inputs s) + pi);
    output_of = (fun ~frame ~po -> (frame * num_outputs s) + po);
    gate_of = (fun ~frame g -> id frame g);
  }

let simulate ?init s cycles =
  let ni = num_state s in
  let state =
    match init with
    | Some a ->
        if Array.length a <> ni then
          invalid_arg "Sequential.simulate: init length";
        Array.copy a
    | None -> Array.make ni false
  in
  (* position of each comb input id within the comb input vector *)
  let pos = Hashtbl.create 16 in
  Array.iteri (fun i g -> Hashtbl.replace pos g i) s.comb.Netlist.Circuit.inputs;
  let outputs_per_cycle =
    List.map
      (fun vec ->
        if Array.length vec <> num_inputs s then
          invalid_arg "Sequential.simulate: input vector length";
        let full = Array.make (Netlist.Circuit.num_inputs s.comb) false in
        Array.iteri
          (fun i g -> full.(Hashtbl.find pos g) <- vec.(i))
          s.primary_inputs;
        Array.iteri
          (fun j q -> full.(Hashtbl.find pos q) <- state.(j))
          s.state_q;
        let values = Simulator.eval s.comb full in
        Array.iteri (fun j d -> state.(j) <- values.(d)) s.state_d;
        Array.map (fun g -> values.(g)) s.primary_outputs)
      cycles
  in
  outputs_per_cycle
