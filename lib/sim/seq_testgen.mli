(** Test generation for sequential diagnosis.

    A sequential test is an input *sequence* applied from the reset state
    together with one erroneous primary output at one cycle and its
    correct value — the sequential analogue of the paper's (t, o, v)
    triples (the setting of the cited SAT-based sequential-diagnosis
    work). *)

type test = {
  sequence : bool array array;  (** per-cycle primary-input vectors *)
  cycle : int;                  (** cycle at which the output is wrong *)
  po_index : int;               (** index into the primary outputs *)
  expected : bool;
}

val pp : Format.formatter -> test -> unit

val fails : Sequential.t -> test -> bool
(** Whether the circuit (from reset) violates the test. *)

val generate :
  seed:int ->
  length:int ->
  max_sequences:int ->
  wanted:int ->
  golden:Sequential.t ->
  faulty:Sequential.t ->
  test list
(** Draw random input sequences of [length] cycles, simulate both
    machines from reset and keep each (sequence, cycle, output) mismatch
    as a test, until [wanted] tests or [max_sequences] sequences.  All
    returned tests share the sequence length. *)
