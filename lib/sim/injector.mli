(** Seeded error injection (the paper's experimental setup: 1–4 gate-change
    errors per circuit). *)

val inject :
  seed:int -> num_errors:int -> Netlist.Circuit.t ->
  Netlist.Circuit.t * Fault.error list
(** Picks [num_errors] distinct logic gates that lie in the fanin cone of
    some primary output (so the error can matter), replaces each with a
    random different kind of the same arity, and returns the faulty
    circuit together with the injected errors.
    @raise Invalid_argument if the circuit has fewer eligible gates. *)
