module Circuit = Netlist.Circuit

type error = {
  gate : int;
  port : int;
  correct : int;
  wrong : int;
}

let pp c ppf e =
  Format.fprintf ppf "%s.fanin[%d]: %s -> %s" c.Circuit.names.(e.gate) e.port
    c.Circuit.names.(e.correct) c.Circuit.names.(e.wrong)

let rewire c ~gate ~port ~src =
  let fanins = Array.copy c.Circuit.fanins.(gate) in
  fanins.(port) <- src;
  Circuit.with_gates c [ (gate, c.Circuit.kinds.(gate), fanins) ]

let apply c e =
  if c.Circuit.fanins.(e.gate).(e.port) <> e.correct then
    invalid_arg "Connection.apply: circuit does not match the error";
  rewire c ~gate:e.gate ~port:e.port ~src:e.wrong

let undo c e =
  if c.Circuit.fanins.(e.gate).(e.port) <> e.wrong then
    invalid_arg "Connection.undo: circuit does not match the error";
  rewire c ~gate:e.gate ~port:e.port ~src:e.correct

let inject ~seed c =
  let rng = Random.State.make [| seed; 0xc0 |] in
  let gates = Circuit.gate_ids c in
  let observable =
    Netlist.Structural.fanin_cone c (Array.to_list c.Circuit.outputs)
  in
  let eligible =
    Array.to_list gates
    |> List.filter (fun g ->
           observable.(g) && Array.length c.Circuit.fanins.(g) > 0)
    |> Array.of_list
  in
  if Array.length eligible = 0 then
    invalid_arg "Connection.inject: no eligible gates";
  (* try random (gate, port, source) triples until one is acyclic-safe
     and actually changes the wiring *)
  let rec attempt tries =
    if tries > 1000 then invalid_arg "Connection.inject: no safe rewiring"
    else begin
      let gate = eligible.(Random.State.int rng (Array.length eligible)) in
      let port = Random.State.int rng (Array.length c.Circuit.fanins.(gate)) in
      let correct = c.Circuit.fanins.(gate).(port) in
      (* the new source must not be downstream of the gate *)
      let downstream = Netlist.Structural.fanout_cone c [ gate ] in
      let wrong = Random.State.int rng (Circuit.size c) in
      if wrong <> correct && wrong <> gate && not downstream.(wrong) then
        (rewire c ~gate ~port ~src:wrong, { gate; port; correct; wrong })
      else attempt (tries + 1)
    end
  in
  attempt 0
