module Circuit = Netlist.Circuit
module Gate = Netlist.Gate

type fault = {
  gate : int;
  value : bool;
}

let equal (a : fault) (b : fault) = a = b
let compare = Stdlib.compare

let pp c ppf f =
  Format.fprintf ppf "%s/s-a-%d" c.Circuit.names.(f.gate)
    (if f.value then 1 else 0)

let all_faults c =
  let nodes =
    Array.to_list c.Circuit.inputs @ Array.to_list (Circuit.gate_ids c)
  in
  List.concat_map
    (fun g -> [ { gate = g; value = false }; { gate = g; value = true } ])
    nodes

let const_kind v = if v then Gate.Const1 else Gate.Const0

(* Faulty gate: the node becomes a constant.  Faulty primary input: append
   a constant node and redirect every reader (and the output vector) to
   it, keeping the input itself so the interface is unchanged. *)
let apply c f =
  if not (Circuit.is_input c f.gate) then
    Circuit.with_gates c [ (f.gate, const_kind f.value, [||]) ]
  else begin
    let n = Circuit.size c in
    let fresh = n in
    let redirect g = if g = f.gate then fresh else g in
    let kinds = Array.append c.Circuit.kinds [| const_kind f.value |] in
    let fanins =
      Array.append
        (Array.map (Array.map redirect) c.Circuit.fanins)
        [| [||] |]
    in
    let names =
      Array.append c.Circuit.names
        [| c.Circuit.names.(f.gate) ^ "_stuck" |]
    in
    Circuit.create ~name:c.Circuit.name ~kinds ~fanins ~names
      ~inputs:c.Circuit.inputs
      ~outputs:(Array.map redirect c.Circuit.outputs)
  end
