(** Event-driven what-if resimulation.

    Starting from a complete value assignment (from {!Simulator.eval}),
    force new values onto a few gates and propagate only the resulting
    changes forward, in level order.  This is the cheap effect-analysis
    engine used by the advanced simulation-based diagnosis: the cost is
    proportional to the perturbed cone, not to the circuit. *)

val resimulate :
  Netlist.Circuit.t -> bool array -> (int * bool) list -> bool array
(** [resimulate c base forced] returns a fresh value array equal to [base]
    except that each gate in [forced] is pinned to the given value
    (regardless of its fanins) and downstream gates are recomputed.
    [base] is not modified. *)

val output_after :
  Netlist.Circuit.t -> bool array -> (int * bool) list -> int -> bool
(** [output_after c base forced po_index] — value of the primary output at
    [po_index] after the forcing, without materializing unrelated cones
    (early exit once the output settles). *)
