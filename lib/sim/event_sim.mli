(** Event-driven what-if resimulation.

    Starting from a complete value assignment (from {!Simulator.eval}),
    force new values onto a few gates and propagate only the resulting
    changes forward, in level order.  This is the cheap effect-analysis
    engine used by the advanced simulation-based diagnosis: the cost is
    proportional to the perturbed cone, not to the circuit.

    All entry points accept an optional {!Sim_ctx.t}; with one, the event
    queue (and for {!output_after} the scratch value buffer) is reused
    instead of reallocated, so repeated what-if queries over the same
    circuit are allocation-free apart from documented result copies. *)

val resimulate :
  ?ctx:Sim_ctx.t ->
  Netlist.Circuit.t -> bool array -> (int * bool) list -> bool array
(** [resimulate c base forced] returns a fresh value array equal to [base]
    except that each gate in [forced] is pinned to the given value
    (regardless of its fanins) and downstream gates are recomputed.
    [base] is not modified. *)

val output_after :
  ?ctx:Sim_ctx.t ->
  Netlist.Circuit.t -> bool array -> (int * bool) list -> int -> bool
(** [output_after c base forced po_index] — value of the primary output at
    [po_index] after the forcing, without materializing unrelated cones
    (early exit once the output settles).  With [?ctx], [base] must not
    alias the context's own scalar buffer. *)
