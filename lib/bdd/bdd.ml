type t = int

let bdd_false = 0
let bdd_true = 1
let of_bool b = if b then bdd_true else bdd_false

type manager = {
  mutable vars : int array;   (* node -> variable (max_int on terminals) *)
  mutable lows : int array;
  mutable highs : int array;
  mutable count : int;
  unique : (int * int * int, int) Hashtbl.t;
  ite_cache : (int * int * int, int) Hashtbl.t;
}

let manager () =
  let m =
    {
      vars = Array.make 1024 max_int;
      lows = Array.make 1024 0;
      highs = Array.make 1024 0;
      count = 2;
      unique = Hashtbl.create 4096;
      ite_cache = Hashtbl.create 4096;
    }
  in
  m.vars.(0) <- max_int;
  m.vars.(1) <- max_int;
  m

let grow m =
  if m.count = Array.length m.vars then begin
    let n = 2 * m.count in
    let copy a fill =
      let a' = Array.make n fill in
      Array.blit a 0 a' 0 m.count;
      a'
    in
    m.vars <- copy m.vars max_int;
    m.lows <- copy m.lows 0;
    m.highs <- copy m.highs 0
  end

(* hash-consed constructor; enforces reduction (low <> high) *)
let mk m v low high =
  if low = high then low
  else
    let key = (v, low, high) in
    match Hashtbl.find_opt m.unique key with
    | Some id -> id
    | None ->
        grow m;
        let id = m.count in
        m.vars.(id) <- v;
        m.lows.(id) <- low;
        m.highs.(id) <- high;
        m.count <- id + 1;
        Hashtbl.add m.unique key id;
        id

let var m i =
  if i < 0 then invalid_arg "Bdd.var";
  mk m i bdd_false bdd_true

let rec ite m f g h =
  (* terminal cases *)
  if f = bdd_true then g
  else if f = bdd_false then h
  else if g = h then g
  else if g = bdd_true && h = bdd_false then f
  else begin
    let key = (f, g, h) in
    match Hashtbl.find_opt m.ite_cache key with
    | Some r -> r
    | None ->
        let top =
          min m.vars.(f) (min m.vars.(g) m.vars.(h))
        in
        let cofactor x =
          if m.vars.(x) = top then (m.lows.(x), m.highs.(x)) else (x, x)
        in
        let f0, f1 = cofactor f in
        let g0, g1 = cofactor g in
        let h0, h1 = cofactor h in
        let r0 = ite m f0 g0 h0 in
        let r1 = ite m f1 g1 h1 in
        let r = mk m top r0 r1 in
        Hashtbl.add m.ite_cache key r;
        r
  end

let not_ m f = ite m f bdd_false bdd_true
let and_ m f g = ite m f g bdd_false
let or_ m f g = ite m f bdd_true g
let xor_ m f g = ite m f (not_ m g) g
let xnor_ m f g = ite m f g (not_ m g)

let equal (a : t) (b : t) = a = b

let eval m f assignment =
  let rec walk n =
    if n = bdd_false then false
    else if n = bdd_true then true
    else if assignment.(m.vars.(n)) then walk m.highs.(n)
    else walk m.lows.(n)
  in
  walk f

let size m f =
  let seen = Hashtbl.create 64 in
  let rec visit n =
    if n > 1 && not (Hashtbl.mem seen n) then begin
      Hashtbl.add seen n ();
      visit m.lows.(n);
      visit m.highs.(n)
    end
  in
  visit f;
  Hashtbl.length seen

let live_nodes m = m.count - 2

let sat_count m ~num_vars f =
  (* density: probability of satisfaction under uniform assignments *)
  let memo = Hashtbl.create 64 in
  let rec density n =
    if n = bdd_false then 0.0
    else if n = bdd_true then 1.0
    else
      match Hashtbl.find_opt memo n with
      | Some d -> d
      | None ->
          let d = 0.5 *. (density m.lows.(n) +. density m.highs.(n)) in
          Hashtbl.add memo n d;
          d
  in
  density f *. (2.0 ** float_of_int num_vars)

let any_sat m f =
  if f = bdd_false then None
  else
    let rec walk acc n =
      if n = bdd_true then List.rev acc
      else if m.highs.(n) <> bdd_false then
        walk ((m.vars.(n), true) :: acc) m.highs.(n)
      else walk ((m.vars.(n), false) :: acc) m.lows.(n)
    in
    Some (walk [] f)

let of_circuit m (c : Netlist.Circuit.t) =
  let module Circuit = Netlist.Circuit in
  let module Gate = Netlist.Gate in
  let values = Array.make (Circuit.size c) bdd_false in
  Array.iteri (fun i g -> values.(g) <- var m i) c.Circuit.inputs;
  let fold op init args =
    Array.fold_left (fun acc x -> op m acc values.(x)) init args
  in
  Array.iter
    (fun g ->
      let fanins = c.Circuit.fanins.(g) in
      match c.Circuit.kinds.(g) with
      | Gate.Input -> ()
      | Gate.Const0 -> values.(g) <- bdd_false
      | Gate.Const1 -> values.(g) <- bdd_true
      | Gate.Buf -> values.(g) <- values.(fanins.(0))
      | Gate.Not -> values.(g) <- not_ m values.(fanins.(0))
      | Gate.And -> values.(g) <- fold and_ bdd_true fanins
      | Gate.Nand -> values.(g) <- not_ m (fold and_ bdd_true fanins)
      | Gate.Or -> values.(g) <- fold or_ bdd_false fanins
      | Gate.Nor -> values.(g) <- not_ m (fold or_ bdd_false fanins)
      | Gate.Xor -> values.(g) <- fold xor_ bdd_false fanins
      | Gate.Xnor -> values.(g) <- not_ m (fold xor_ bdd_false fanins))
    c.Circuit.topo;
  Array.map (fun g -> values.(g)) c.Circuit.outputs

let check_equivalence a b =
  let module Circuit = Netlist.Circuit in
  if
    Circuit.num_inputs a <> Circuit.num_inputs b
    || Circuit.num_outputs a <> Circuit.num_outputs b
  then invalid_arg "Bdd.check_equivalence: interface mismatch";
  let m = manager () in
  let oa = of_circuit m a in
  let ob = of_circuit m b in
  Array.for_all2 equal oa ob
