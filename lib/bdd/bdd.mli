(** Reduced ordered binary decision diagrams.

    The substrate behind the BDD-based diagnosis/verification approaches
    the paper contrasts with (§1: "for large designs BDD-based
    approaches suffer from space complexity issues").  A classical
    unique-table + ITE-cache implementation, fixed variable order, no
    complement edges — enough to check equivalence symbolically, count
    satisfying assignments, and *measure* the space blow-up claim against
    the SAT encodings (see the [related] benchmark).

    All operations are canonical: two functions are equal iff their node
    handles are equal. *)

type manager

type t = private int
(** Node handle, valid only with the manager that created it. *)

val manager : unit -> manager

val bdd_false : t
val bdd_true : t
val of_bool : bool -> t

val var : manager -> int -> t
(** The projection function of variable [i] (also fixes the order: lower
    index = closer to the root). *)

val not_ : manager -> t -> t
val and_ : manager -> t -> t -> t
val or_ : manager -> t -> t -> t
val xor_ : manager -> t -> t -> t
val xnor_ : manager -> t -> t -> t
val ite : manager -> t -> t -> t -> t

val equal : t -> t -> bool
(** Function equality (canonicity). *)

val eval : manager -> t -> bool array -> bool
(** Evaluate under an assignment indexed by variable. *)

val size : manager -> t -> int
(** Nodes reachable from this root (terminals excluded). *)

val live_nodes : manager -> int
(** Total nodes ever created in the manager — the space measure. *)

val sat_count : manager -> num_vars:int -> t -> float
(** Number of satisfying assignments over [num_vars] variables. *)

val any_sat : manager -> t -> (int * bool) list option
(** A partial satisfying assignment ([None] for the constant-false
    function); unmentioned variables are don't-cares. *)

val of_circuit : manager -> Netlist.Circuit.t -> t array
(** Symbolic simulation: one BDD per primary output, primary input [i]
    mapped to variable [i].  Raises through {!Stack_overflow} or memory
    pressure on circuits where BDDs blow up — that is the point the
    benchmark demonstrates. *)

val check_equivalence :
  Netlist.Circuit.t -> Netlist.Circuit.t -> bool
(** BDD-based combinational equivalence over a fresh manager (positional
    interface correspondence, same checks as {!Encode.Miter}). *)
