(* Command-line front-end for the diagnosis library.

   Circuits are given either as an ISCAS89 .bench file path or as one of
   the built-in names (s27, g1423, g6669, g38417, rca<W>, alu<W>, mul<W>,
   parity<N>).  See `diagnose --help`. *)

let load_circuit ?(scale = 1.0) spec =
  if Sys.file_exists spec then
    (Core.Bench_format.parse_file spec).Core.Bench_format.circuit
  else
    match Bench_suite.Embedded.by_name spec ~scale with
    | c -> c
    | exception Not_found ->
        let prefix p =
          if String.length spec > String.length p
             && String.sub spec 0 (String.length p) = p
          then int_of_string_opt
                 (String.sub spec (String.length p)
                    (String.length spec - String.length p))
          else None
        in
        (match (prefix "rca", prefix "alu", prefix "mul", prefix "parity") with
        | Some w, _, _, _ -> Core.Generators.ripple_carry_adder w
        | _, Some w, _, _ -> Core.Generators.alu w
        | _, _, Some w, _ -> Core.Generators.multiplier w
        | _, _, _, Some n -> Core.Generators.parity_tree n
        | None, None, None, None ->
            Fmt.failwith "unknown circuit %S (not a file or builtin)" spec)

let pp_solution c ppf sol =
  Fmt.pf ppf "{%a}"
    (Fmt.list ~sep:(Fmt.any ", ") Fmt.string)
    (List.map (fun g -> c.Core.Circuit.names.(g)) sol)

(* ---------- info ---------- *)

let info_cmd_run spec scale =
  let c = load_circuit ~scale spec in
  Fmt.pr "%a@." Core.Circuit.pp_stats c;
  let dom = Core.Dominators.compute c in
  Fmt.pr "dominator skeleton: %d gates@."
    (List.length (Core.Dominators.nontrivial dom));
  0

(* ---------- generate ---------- *)

let generate_cmd_run spec scale out =
  let c = load_circuit ~scale spec in
  Core.Bench_format.write_file out c;
  Fmt.pr "wrote %s (%a)@." out Core.Circuit.pp_stats c;
  0

(* ---------- inject ---------- *)

let inject_cmd_run spec scale errors seed out =
  let c = load_circuit ~scale spec in
  let faulty, errs = Core.Injector.inject ~seed ~num_errors:errors c in
  List.iter (fun e -> Fmt.pr "injected %a@." (Core.Fault.pp c) e) errs;
  Core.Bench_format.write_file out faulty;
  Fmt.pr "wrote %s@." out;
  0

(* ---------- run (diagnosis) ---------- *)

type approach =
  | Bsim | Cov | Bsat | Advsim | Advsat | Hybrid | Xlist | Inc | Hitting
  | Adaptive

let approach_conv =
  let parse = function
    | "bsim" -> Ok Bsim
    | "cov" -> Ok Cov
    | "bsat" -> Ok Bsat
    | "advsim" -> Ok Advsim
    | "advsat" -> Ok Advsat
    | "hybrid" -> Ok Hybrid
    | "xlist" -> Ok Xlist
    | "incremental" -> Ok Inc
    | "hitting" -> Ok Hitting
    | "adaptive" -> Ok Adaptive
    | s -> Error (`Msg (Printf.sprintf "unknown approach %S" s))
  in
  let print ppf a =
    Fmt.string ppf
      (match a with
      | Bsim -> "bsim" | Cov -> "cov" | Bsat -> "bsat" | Advsim -> "advsim"
      | Advsat -> "advsat" | Hybrid -> "hybrid" | Xlist -> "xlist"
      | Inc -> "incremental" | Hitting -> "hitting" | Adaptive -> "adaptive")
  in
  Cmdliner.Arg.conv (parse, print)

let heuristic_conv =
  let parse = function
    | "bfs" -> Ok Core.Hitting.Bfs
    | "greedy" -> Ok Core.Hitting.Greedy
    | s -> Error (`Msg (Printf.sprintf "unknown heuristic %S" s))
  in
  let print ppf h =
    Fmt.string ppf
      (match h with Core.Hitting.Bfs -> "bfs" | Core.Hitting.Greedy -> "greedy")
  in
  Cmdliner.Arg.conv (parse, print)

let report_solutions faulty tests label solutions =
  Fmt.pr "%s: %d solution(s)@." label (List.length solutions);
  List.iter
    (fun sol ->
      let valid = Core.Validity.check_sat faulty tests sol in
      Fmt.pr "  %a%s@." (pp_solution faulty) sol
        (if valid then "" else "  [not a valid correction]"))
    solutions

let run_cmd_run golden_spec faulty_spec scale errors seed approach heuristic k
    m max_solutions stats trace_out budget_seconds budget_conflicts certify
    jobs =
  (* flags that only one method honors are rejected, not ignored: a
     silently dropped flag reads as a different experiment than it ran *)
  if heuristic <> None && approach <> Hitting then
    Fmt.failwith "--heuristic only applies to --method hitting";
  let golden = load_circuit ~scale golden_spec in
  let faulty, injected =
    match faulty_spec with
    | Some spec -> (load_circuit ~scale spec, [])
    | None ->
        let f, errs = Core.Injector.inject ~seed ~num_errors:errors golden in
        List.iter (fun e -> Fmt.pr "injected %a@." (Core.Fault.pp golden) e) errs;
        (f, errs)
  in
  let tests =
    Core.Testgen.generate ~seed:(seed + 1) ~max_vectors:(1 lsl 16) ~wanted:m
      ~golden ~faulty
  in
  Fmt.pr "%d failing test(s) found@." (List.length tests);
  if tests = [] then begin
    Fmt.pr "nothing to diagnose@.";
    0
  end
  else begin
    let k = match k with Some k -> k | None -> max 1 errors in
    let budget =
      match (budget_seconds, budget_conflicts) with
      | None, None -> None
      | seconds, conflicts -> Some (Core.Budget.create ?conflicts ?seconds ())
    in
    let obs =
      if stats || trace_out <> None then Some (Core.Obs.create ()) else None
    in
    (* the simulation-based engines have no solver budget; a seconds
       budget degrades to their coarser between-solutions time limit *)
    let time_limit = budget_seconds in
    let truncation_notice truncated =
      if truncated then
        Fmt.pr "budget exhausted: enumeration truncated (solutions above are still valid)@."
    in
    (* with --certify: verified-answer count, or the failures, from the
       SAT engines; None = the method has no certification support *)
    let certification = ref None in
    let note_cert checks failures =
      if certify then certification := Some (checks, failures)
    in
    (match approach with
    | Bsim ->
        let r = Core.Bsim.diagnose ?obs ~jobs faulty tests in
        Fmt.pr "BSIM: |union|=%d, max marks=%d@."
          (List.length r.Core.Bsim.union)
          r.Core.Bsim.max_marks;
        Fmt.pr "G_max = %a@." (pp_solution faulty) r.Core.Bsim.gmax
    | Cov ->
        let r =
          Core.Cover.diagnose ~max_solutions ?time_limit ?obs ~jobs ~k faulty
            tests
        in
        report_solutions faulty tests "COV" r.Core.Cover.solutions;
        truncation_notice r.Core.Cover.truncated
    | Bsat ->
        let r =
          Core.Bsat.diagnose ~max_solutions ?budget ?obs ~certify ~jobs ~k
            faulty tests
        in
        report_solutions faulty tests "BSAT" r.Core.Bsat.solutions;
        truncation_notice r.Core.Bsat.truncated;
        note_cert r.Core.Bsat.cert_checks r.Core.Bsat.cert_failures
    | Advsim ->
        let r =
          Core.Advanced_sim.diagnose ~max_solutions ?time_limit ~k faulty tests
        in
        report_solutions faulty tests "advanced-sim"
          r.Core.Advanced_sim.solutions;
        truncation_notice r.Core.Advanced_sim.truncated
    | Advsat ->
        let r =
          Core.Advanced_sat.diagnose_dominators ~max_solutions ?budget ?obs
            ~certify ~jobs ~k faulty tests
        in
        report_solutions faulty tests "advanced-sat (2-pass)"
          r.Core.Advanced_sat.solutions;
        truncation_notice r.Core.Advanced_sat.truncated;
        note_cert r.Core.Advanced_sat.cert_checks
          r.Core.Advanced_sat.cert_failures
    | Hybrid ->
        let cov =
          Core.Cover.diagnose ~max_solutions:1 ?time_limit ?obs ~jobs ~k
            faulty tests
        in
        (match cov.Core.Cover.solutions with
        | [] ->
            Fmt.pr "no COV seed available@.";
            truncation_notice cov.Core.Cover.truncated
        | seed_sol :: _ ->
            Fmt.pr "COV seed: %a@." (pp_solution faulty) seed_sol;
            let r =
              Core.Hybrid.repair ?budget ?obs ~certify ~jobs ~k
                ~seed:seed_sol faulty tests
            in
            (match r.Core.Hybrid.repaired with
            | None when r.Core.Hybrid.exhausted -> ()
            | None -> Fmt.pr "no valid correction of size <= %d@." k
            | Some rr ->
                Fmt.pr "repaired: %a (dropped %d, added %d)@."
                  (pp_solution faulty) rr.Core.Hybrid.correction
                  rr.Core.Hybrid.dropped rr.Core.Hybrid.added);
            (* the seed enumeration is capped at one solution on purpose,
               so its truncated flag is not an exhaustion signal *)
            truncation_notice r.Core.Hybrid.exhausted;
            note_cert r.Core.Hybrid.cert_checks r.Core.Hybrid.cert_failures)
    | Xlist ->
        let r = Core.Xlist.diagnose faulty tests in
        Fmt.pr "Xlist: |union|=%d@." (List.length r.Core.Xlist.union)
    | Hitting ->
        let heuristic =
          Option.value ~default:Core.Hitting.Bfs heuristic
        in
        let r =
          Core.Hitting.diagnose ~heuristic ~max_solutions ?budget ?obs
            ~certify ~jobs ~k faulty tests
        in
        report_solutions faulty tests "HITTING" r.Core.Hitting.solutions;
        Fmt.pr "cores=%d nodes=%d reused=%d pruned=%d@." r.Core.Hitting.cores
          r.Core.Hitting.nodes r.Core.Hitting.reused r.Core.Hitting.pruned;
        truncation_notice r.Core.Hitting.truncated;
        note_cert r.Core.Hitting.cert_checks r.Core.Hitting.cert_failures
    | Inc ->
        (* the exact engine `diagnose serve` runs per request, on a
           cold context — a served response's stats block is
           byte-identical to this run's *)
        let inc = Core.Incremental.create ?obs ~certify ~k faulty tests in
        let r =
          Core.Serve.Engine.run ?obs ?budget ~jobs ~max_solutions inc
        in
        report_solutions faulty tests "incremental"
          r.Core.Serve.Engine.solutions;
        truncation_notice r.Core.Serve.Engine.truncated;
        note_cert r.Core.Serve.Engine.cert_checks
          r.Core.Serve.Engine.cert_failures
    | Adaptive ->
        let r =
          Core.Adaptive.diagnose ~max_solutions ?budget ?obs ~certify ~jobs
            ~k ~golden faulty tests
        in
        List.iter
          (fun (round : Core.Adaptive.round) ->
            Fmt.pr
              "round: %d -> %d survivor(s), %d new test(s), killed %d \
               (entropy %.3f)@."
              round.Core.Adaptive.survivors_before
              round.Core.Adaptive.survivors_after
              (List.length round.Core.Adaptive.triples)
              (List.length round.Core.Adaptive.killed)
              round.Core.Adaptive.score)
          r.Core.Adaptive.rounds;
        Fmt.pr "adaptive: %d initial + %d generated test(s), %d twin quer%s@."
          r.Core.Adaptive.initial_tests r.Core.Adaptive.tests_committed
          r.Core.Adaptive.twin_calls
          (if r.Core.Adaptive.twin_calls = 1 then "y" else "ies");
        Fmt.pr "verdict: %s@."
          (match r.Core.Adaptive.verdict with
          | Core.Adaptive.Unique -> "unique diagnosis"
          | Core.Adaptive.No_diagnosis ->
              Printf.sprintf "no correction of size <= %d" k
          | Core.Adaptive.Indistinguishable ->
              "survivors provably indistinguishable"
          | Core.Adaptive.Stalled -> "stalled (no vector splits the survivors)"
          | Core.Adaptive.Exhausted -> "exhausted (budget or round limit)");
        report_solutions faulty tests "ADAPTIVE" r.Core.Adaptive.solutions;
        truncation_notice r.Core.Adaptive.truncated;
        note_cert r.Core.Adaptive.cert_checks r.Core.Adaptive.cert_failures);
    (match injected with
    | [] -> ()
    | errs ->
        Fmt.pr "actual error sites: %a@." (pp_solution faulty)
          (Core.Fault.sites errs));
    (* the trace-written notice must precede the stats block: consumers
       take the *last* output line as the JSON *)
    (match (obs, trace_out) with
    | Some obs, Some file ->
        let tr = Core.Obs.trace obs in
        let oc = open_out file in
        output_string oc
          (Core.Obs.Json.to_string (Core.Obs.Trace.to_chrome_json tr));
        output_char oc '\n';
        close_out oc;
        Fmt.pr "wrote %s (%d trace events)@." file
          (List.length (Core.Obs.Trace.events tr))
    | _ -> ());
    let cert_exit =
      if not certify then 0
      else
        match !certification with
        | None ->
            Fmt.pr "certification not supported for this method@.";
            0
        | Some (checks, []) ->
            Fmt.pr "certified: %d solver answer(s) verified@." checks;
            0
        | Some (checks, failures) ->
            Fmt.pr "CERTIFICATION FAILED (%d check(s)):@." checks;
            List.iter (fun msg -> Fmt.pr "  %s@." msg) failures;
            3
    in
    (if stats then
       match obs with
       | None -> ()
       | Some obs -> Fmt.pr "%s@." (Core.Obs.emit ~times:false obs));
    cert_exit
  end

(* ---------- report ---------- *)

let read_file file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* engine = the name's prefix up to the first '/' (the whole name when
   there is none) — the convention every instrumented module follows *)
let engine_of name =
  match String.index_opt name '/' with
  | None -> name
  | Some i -> String.sub name 0 i

let report_cmd_run file =
  let module J = Core.Obs.Json in
  (* an unreadable file raises Sys_error, caught by the top-level
     handler (one-line diagnostic, exit 2) *)
  match J.parse (read_file file) with
  | Error msg ->
      Fmt.epr "diagnose: %s is not a stats block: %s@." file msg;
      2
  | Ok json ->
      let obj_of = function Some (J.Obj kvs) -> kvs | _ -> [] in
      let int_of = function
        | Some (J.Int n) -> n
        | Some (J.Float f) -> int_of_float f
        | _ -> 0
      in
      let float_of = function
        | Some (J.Float f) -> f
        | Some (J.Int n) -> float_of_int n
        | _ -> 0.0
      in
      let counters = obj_of (J.member "counters" json) in
      Fmt.pr "== counters (%d) ==@." (List.length counters);
      List.iter
        (fun (name, v) -> Fmt.pr "  %-42s %d@." name (int_of (Some v)))
        counters;
      let hists = obj_of (J.member "histograms" json) in
      Fmt.pr "== histograms (%d) ==@." (List.length hists);
      List.iter
        (fun (name, h) ->
          Fmt.pr "  %s (%d observation(s))@." name
            (int_of (J.member "count" h));
          match J.member "buckets" h with
          | Some (J.Arr buckets) ->
              List.iter
                (function
                  | J.Arr [ J.Int lo; J.Int hi; J.Int count ] ->
                      if hi = max_int then
                        Fmt.pr "    %10d ..        inf  %d@." lo count
                      else Fmt.pr "    %10d .. %10d  %d@." lo hi count
                  | _ -> ())
                buckets
          | _ -> ())
        hists;
      let events = J.member "events" json in
      let items =
        match Option.bind events (J.member "items") with
        | Some (J.Arr items) -> items
        | _ -> []
      in
      Fmt.pr "== events (%d emitted, %d dropped) ==@."
        (int_of (Option.bind events (J.member "emitted")))
        (int_of (Option.bind events (J.member "dropped")));
      let per_engine = Hashtbl.create 8 in
      List.iter
        (fun item ->
          match J.member "name" item with
          | Some (J.String name) ->
              let e = engine_of name in
              Hashtbl.replace per_engine e
                (1 + Option.value ~default:0 (Hashtbl.find_opt per_engine e))
          | _ -> ())
        items;
      Hashtbl.fold (fun e n acc -> (e, n) :: acc) per_engine []
      |> List.sort compare
      |> List.iter (fun (e, n) -> Fmt.pr "  %-42s %d event(s)@." e n);
      (match obj_of (J.member "spans" json) with
      | [] -> ()
      | spans ->
          let totals =
            List.map
              (fun (name, s) ->
                ( name,
                  float_of (J.member "seconds" s),
                  int_of (J.member "calls" s) ))
              spans
            |> List.sort (fun (n1, t1, _) (n2, t2, _) ->
                   match compare t2 t1 with 0 -> compare n1 n2 | c -> c)
          in
          Fmt.pr "== top spans ==@.";
          List.iteri
            (fun i (name, total, calls) ->
              if i < 10 then
                Fmt.pr "  %-42s %.6fs over %d call(s)@." name total calls)
            totals);
      0

(* ---------- report --diff ---------- *)

(* side-by-side comparison of two saved stats blocks with relative
   deltas, for before/after reading of a change (e.g. cold vs warm
   serve stats, or two solver configurations) *)
let report_diff_run file_a file_b =
  let module J = Core.Obs.Json in
  match (J.parse (read_file file_a), J.parse (read_file file_b)) with
  | Error msg, _ ->
      Fmt.epr "diagnose: %s is not a stats block: %s@." file_a msg;
      2
  | _, Error msg ->
      Fmt.epr "diagnose: %s is not a stats block: %s@." file_b msg;
      2
  | Ok a, Ok b ->
      let obj_of = function Some (J.Obj kvs) -> kvs | _ -> [] in
      let int_of = function
        | Some (J.Int n) -> Some n
        | Some (J.Float f) -> Some (int_of_float f)
        | _ -> None
      in
      let cell = function Some n -> string_of_int n | None -> "-" in
      let delta va vb =
        match (va, vb) with
        | Some va, Some vb when va = vb -> "="
        | Some va, Some vb ->
            Printf.sprintf "%+.1f%%"
              (100.0 *. float_of_int (vb - va)
              /. float_of_int (max 1 (abs va)))
        | _ -> "-"
      in
      let row name va vb =
        Fmt.pr "  %-42s %12s %12s  %s@." name (cell va) (cell vb)
          (delta va vb)
      in
      let union rows_a rows_b =
        List.sort_uniq String.compare
          (List.map fst rows_a @ List.map fst rows_b)
      in
      let section title rows_a rows_b =
        Fmt.pr "== %s: %s vs %s ==@." title file_a file_b;
        List.iter
          (fun name ->
            row name
              (List.assoc_opt name rows_a)
              (List.assoc_opt name rows_b))
          (union rows_a rows_b)
      in
      let counters j =
        List.filter_map
          (fun (name, v) -> Option.map (fun n -> (name, n)) (int_of (Some v)))
          (obj_of (J.member "counters" j))
      in
      section "counters" (counters a) (counters b);
      let hist_counts j =
        List.filter_map
          (fun (name, h) ->
            Option.map (fun n -> (name, n)) (int_of (J.member "count" h)))
          (obj_of (J.member "histograms" j))
      in
      section "histogram observations" (hist_counts a) (hist_counts b);
      let event_totals j =
        let events = J.member "events" j in
        List.filter_map
          (fun key ->
            Option.map
              (fun n -> (key, n))
              (int_of (Option.bind events (J.member key))))
          [ "emitted"; "dropped" ]
      in
      section "events" (event_totals a) (event_totals b);
      0

(* ---------- coverage (production test) ---------- *)

let coverage_cmd_run spec scale vectors seed use_atpg jobs =
  let c = load_circuit ~scale spec in
  let faults = Core.Stuck_at.all_faults c in
  Fmt.pr "%a@." Core.Circuit.pp_stats c;
  Fmt.pr "fault universe: %d single stuck-at faults@." (List.length faults);
  if use_atpg then begin
    let r = Core.Atpg.cover_stuck_at c in
    Fmt.pr "ATPG: %d deterministic vectors, %d untestable fault(s)@."
      (List.length r.Core.Atpg.tests)
      (List.length r.Core.Atpg.untestable);
    let testable = List.length faults - List.length r.Core.Atpg.untestable in
    Fmt.pr "coverage: %d/%d testable faults (100%% by construction)@."
      testable testable
  end
  else begin
    let rng = Random.State.make [| seed |] in
    let vecs =
      List.init vectors (fun _ ->
          Array.init (Core.Circuit.num_inputs c) (fun _ ->
              Random.State.bool rng))
    in
    let r = Core.Fault_sim.run ~jobs c ~vectors:vecs ~faults in
    Fmt.pr "random: %d vectors, coverage %.1f%% (%d undetected)@." vectors
      (100.0 *. r.Core.Fault_sim.coverage)
      (List.length r.Core.Fault_sim.undetected)
  end;
  0

(* ---------- export-cnf ---------- *)

let export_cmd_run golden_spec scale errors seed k m out =
  let golden = load_circuit ~scale golden_spec in
  let faulty, _ = Core.Injector.inject ~seed ~num_errors:errors golden in
  let tests =
    Core.Testgen.generate ~seed:(seed + 1) ~max_vectors:(1 lsl 16) ~wanted:m
      ~golden ~faulty
  in
  if tests = [] then begin
    Fmt.epr "no failing tests; nothing to export@.";
    1
  end
  else begin
    let k = match k with Some k -> k | None -> max 1 errors in
    let dimacs = Core.Muxed.export_dimacs ~k faulty tests in
    let oc = open_out out in
    output_string oc dimacs;
    close_out oc;
    Fmt.pr "wrote %s (%d tests, k=%d; DIMACS vars 1..%d are the selects)@."
      out (List.length tests) k
      (Array.length (Core.Circuit.gate_ids faulty));
    0
  end

(* ---------- serve ---------- *)

let serve_cmd_run scale jobs circuit_capacity context_capacity slow_ms
    trace_file =
  (* slow-request records go to stderr as JSON lines — stdout carries
     the framed protocol stream and must stay clean *)
  let log =
    Option.map (fun _ -> Core.Obs.Log.make ~sink:stderr ()) slow_ms
  in
  let server =
    Core.Serve.Server.create ~circuit_capacity ~context_capacity ?slow_ms ?log
      ~trace:(trace_file <> None) ~jobs (load_circuit ~scale)
  in
  let code = Core.Serve.Server.session server stdin stdout in
  (match trace_file with
  | None -> ()
  | Some file ->
      let tr = Core.Obs.trace (Core.Serve.Server.obs server) in
      let oc = open_out file in
      output_string oc
        (Core.Obs.Json.to_string (Core.Obs.Trace.to_chrome_json tr));
      output_char oc '\n';
      close_out oc;
      Fmt.epr "wrote %s (%d trace events)@." file (Core.Obs.Trace.emitted tr));
  code

(* ---------- experiment ---------- *)

let experiment_cmd_run scale max_solutions time_limit small =
  let specs =
    if small then Bench_suite.Workload.small_specs ()
    else Bench_suite.Workload.paper_specs ~scale
  in
  let rows =
    List.concat_map
      (fun spec ->
        let prepared = Bench_suite.Workload.prepare spec in
        Bench_suite.Runner.run ~max_solutions ~time_limit prepared)
      specs
  in
  Fmt.pr "== Table 2: runtimes (s) ==@.%a@." Bench_suite.Report.pp_table2 rows;
  Fmt.pr "== Table 3: quality ==@.%a@." Bench_suite.Report.pp_table3 rows;
  Fmt.pr "== Figure 6 ==@.%a@." Bench_suite.Report.pp_figure6 rows;
  0

(* ---------- cmdliner plumbing ---------- *)

open Cmdliner

let scale =
  Arg.(value & opt float 1.0 & info [ "scale" ] ~doc:"Scale factor for builtin synthetic circuits")

let circuit_pos =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"CIRCUIT"
       ~doc:"A .bench file or builtin name")

let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed")

let jobs =
  Arg.(value & opt int 1
       & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Worker domains for fault simulation and the SAT \
                 portfolio (default 1 = sequential; the solution set is \
                 identical at every value)")
let errors = Arg.(value & opt int 1 & info [ "errors"; "p" ] ~doc:"Number of injected errors")

let info_cmd =
  Cmd.v (Cmd.info "info" ~doc:"Print circuit statistics")
    Term.(const info_cmd_run $ circuit_pos $ scale)

let generate_cmd =
  let out = Arg.(required & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Output .bench file") in
  Cmd.v (Cmd.info "generate" ~doc:"Write a builtin circuit as .bench")
    Term.(const generate_cmd_run $ circuit_pos $ scale $ out)

let inject_cmd =
  let out = Arg.(required & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Output .bench file") in
  Cmd.v (Cmd.info "inject" ~doc:"Inject gate-change errors and write the faulty circuit")
    Term.(const inject_cmd_run $ circuit_pos $ scale $ errors $ seed $ out)

let run_cmd =
  let faulty = Arg.(value & opt (some string) None & info [ "faulty" ] ~docv:"CIRCUIT" ~doc:"Faulty implementation (default: inject errors into CIRCUIT)") in
  let approach = Arg.(value & opt approach_conv Bsat & info [ "method" ] ~doc:"bsim | cov | bsat | advsim | advsat | hybrid | xlist | incremental | hitting | adaptive") in
  let heuristic = Arg.(value & opt (some heuristic_conv) None & info [ "heuristic" ] ~doc:"HSDAG expansion order for --method hitting: bfs (minimal cardinality first) or greedy (most frequent conflict element first); rejected for any other --method") in
  let k = Arg.(value & opt (some int) None & info [ "k" ] ~doc:"Correction size limit (default: number of injected errors)") in
  let m = Arg.(value & opt int 16 & info [ "tests"; "m" ] ~doc:"Number of failing tests to use") in
  let max_solutions = Arg.(value & opt int 1000 & info [ "max-solutions" ] ~doc:"Stop after this many solutions") in
  let stats = Arg.(value & flag & info [ "stats" ] ~doc:"Print a JSON block of per-engine solver counters (deterministic under a fixed seed)") in
  let trace = Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc:"Write the run's event trace as Chrome trace_event JSON (open in chrome://tracing or Perfetto)") in
  let budget_seconds = Arg.(value & opt (some float) None & info [ "budget" ] ~docv:"SECONDS" ~doc:"Wall-clock budget; SAT engines stop mid-search and return the truncated-but-valid prefix") in
  let budget_conflicts = Arg.(value & opt (some int) None & info [ "budget-conflicts" ] ~docv:"N" ~doc:"Total solver conflict budget across the enumeration (deterministic)") in
  let certify = Arg.(value & flag & info [ "certify" ] ~doc:"Independently verify every SAT-engine solver answer (bsat/advsat): Sat by model evaluation, Unsat by DRUP-checking the solver's proof; exits 3 on a failed check") in
  Cmd.v (Cmd.info "run" ~doc:"Diagnose a faulty circuit against its golden version")
    Term.(const run_cmd_run $ circuit_pos $ faulty $ scale $ errors $ seed
          $ approach $ heuristic $ k $ m $ max_solutions $ stats $ trace
          $ budget_seconds $ budget_conflicts $ certify $ jobs)

let coverage_cmd =
  let vectors = Arg.(value & opt int 256 & info [ "vectors"; "n" ] ~doc:"Random vectors to grade") in
  let atpg = Arg.(value & flag & info [ "atpg" ] ~doc:"Generate a deterministic test set instead (SAT-based ATPG)") in
  Cmd.v (Cmd.info "coverage" ~doc:"Stuck-at fault simulation / ATPG coverage")
    Term.(const coverage_cmd_run $ circuit_pos $ scale $ vectors $ seed $ atpg
          $ jobs)

let export_cmd =
  let out = Arg.(required & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Output DIMACS file") in
  let k = Arg.(value & opt (some int) None & info [ "k" ] ~doc:"Correction size limit") in
  let m = Arg.(value & opt int 8 & info [ "tests"; "m" ] ~doc:"Number of failing tests") in
  Cmd.v (Cmd.info "export-cnf" ~doc:"Export the BSAT diagnosis instance as DIMACS")
    Term.(const export_cmd_run $ circuit_pos $ scale $ errors $ seed $ k $ m $ out)

let report_cmd =
  let file =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"STATS.json"
         ~doc:"A stats JSON block (the last line of diagnose run --stats)")
  in
  let diff =
    Arg.(value & opt (some string) None & info [ "diff" ] ~docv:"B.json"
         ~doc:"Render STATS.json and B.json side by side (counters, \
               histogram observation counts, event totals) with relative \
               deltas instead of summarizing one block")
  in
  let dispatch file = function
    | None -> report_cmd_run file
    | Some file_b -> report_diff_run file file_b
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Summarize a stats JSON block (counters, histograms, events, spans) as text")
    Term.(const dispatch $ file $ diff)

let experiment_cmd =
  let max_solutions = Arg.(value & opt int 20000 & info [ "max-solutions" ] ~doc:"Per-run solution cap") in
  let time_limit = Arg.(value & opt float 120.0 & info [ "time-limit" ] ~doc:"Per-run time limit (s)") in
  let small = Arg.(value & flag & info [ "small" ] ~doc:"Use the quick structured-circuit workloads") in
  Cmd.v (Cmd.info "experiment" ~doc:"Reproduce the paper's Tables 2/3 and Figure 6")
    Term.(const experiment_cmd_run $ scale $ max_solutions $ time_limit $ small)

let serve_cmd =
  let circuits = Arg.(value & opt int 8 & info [ "circuits" ] ~docv:"N" ~doc:"Parsed-netlist cache capacity") in
  let contexts = Arg.(value & opt int 16 & info [ "contexts" ] ~docv:"N" ~doc:"Warm incremental-context cache capacity (evicted contexts are retired)") in
  let slow_ms = Arg.(value & opt (some int) None & info [ "slow-ms" ] ~docv:"N" ~doc:"Log requests with wall latency >= N ms as structured JSON records on stderr (level warn, with the request's measured deltas)") in
  let trace = Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc:"Stitch every request's queue/dispatch/solve spans (tagged with worker domain ids) into one session trace and write it as Chrome trace_event JSON on shutdown") in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve a stream of diagnosis requests with warm pooled \
             incremental solvers (length-prefixed JSON frames on \
             stdin/stdout; ops: load, diagnose, batch, stats, metrics, \
             health, shutdown)")
    Term.(const serve_cmd_run $ scale $ jobs $ circuits $ contexts $ slow_ms
          $ trace)

let exits =
  Cmd.Exit.info 2
    ~doc:"on invalid input: unknown circuit, unreadable or malformed \
          file, or an unrecoverable serve framing error."
  :: Cmd.Exit.info 3 ~doc:"on a failed certification check (run --certify)."
  :: Cmd.Exit.defaults

let main =
  Cmd.group
    (Cmd.info "diagnose" ~version:Core.version ~exits
       ~doc:"Simulation-based and SAT-based circuit diagnosis")
    [ info_cmd; generate_cmd; inject_cmd; run_cmd; report_cmd; coverage_cmd;
      export_cmd; experiment_cmd; serve_cmd ]

(* user-facing errors (unknown circuit, unreadable file, malformed
   input) must exit with a one-line diagnostic and a documented code,
   not escape through cmdliner as a backtrace with exit 125 *)
let () =
  exit
    (try Cmd.eval' ~catch:false main with
    | Failure msg | Sys_error msg | Invalid_argument msg ->
        Fmt.epr "diagnose: %s@." msg;
        2)
