(* DIMACS CNF front-end for the CDCL solver.  Exit code 10 = SAT,
   20 = UNSAT (the conventional SAT-competition codes); with --check a
   certification failure exits 1 instead; invalid input (unreadable or
   malformed DIMACS) exits 2 with a one-line diagnostic. *)

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let run path print_model proof_file check check_mode check_jobs =
  let cnf = Sat.Cnf.of_dimacs (read_file path) in
  let solver = Sat.Solver.create () in
  (* an in-memory sink serves both --proof (serialized at exit) and
     --check (replayed through the independent checker) *)
  let proof =
    if proof_file <> None || check then begin
      let p = Sat.Proof.in_memory () in
      Sat.Solver.set_proof solver (Some p);
      Some p
    end
    else None
  in
  Sat.Solver.add_cnf solver cnf;
  let result = Sat.Solver.solve solver in
  (match (proof_file, proof) with
  | Some file, Some p ->
      let oc = open_out file in
      output_string oc (Sat.Proof.to_string p);
      close_out oc
  | _ -> ());
  let verify () =
    if not check then true
    else
      match result with
      | Sat.Solver.Unsat -> (
          let p = Option.get proof in
          match
            Sat.Drup_check.check_unsat ~mode:check_mode ~jobs:check_jobs cnf
              (Sat.Proof.steps p)
          with
          | Ok () ->
              Printf.printf "c VERIFIED unsat (%d proof steps)\n"
                (Sat.Proof.num_steps p);
              true
          | Error msg ->
              Printf.printf "c NOT VERIFIED: %s\n" msg;
              false)
      | Sat.Solver.Sat ->
          if Sat.Cnf.eval cnf (Sat.Solver.model solver) then begin
            print_endline "c VERIFIED model";
            true
          end
          else begin
            print_endline "c NOT VERIFIED: model violates a clause";
            false
          end
  in
  match result with
  | Sat.Solver.Unsat ->
      print_endline "s UNSATISFIABLE";
      exit (if verify () then 20 else 1)
  | Sat.Solver.Sat ->
      print_endline "s SATISFIABLE";
      if print_model then begin
        let buf = Buffer.create 256 in
        Buffer.add_string buf "v";
        for v = 0 to cnf.Sat.Cnf.num_vars - 1 do
          Buffer.add_string buf
            (Printf.sprintf " %d"
               (if Sat.Solver.value solver v then v + 1 else -(v + 1)))
        done;
        Buffer.add_string buf " 0";
        print_endline (Buffer.contents buf)
      end;
      let st = Sat.Solver.stats solver in
      Printf.printf "c decisions=%d propagations=%d conflicts=%d restarts=%d\n"
        st.Sat.Solver.decisions st.Sat.Solver.propagations
        st.Sat.Solver.conflicts st.Sat.Solver.restarts;
      exit (if verify () then 10 else 1)

open Cmdliner

let path =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
       ~doc:"DIMACS CNF file")

let model =
  Arg.(value & flag & info [ "model"; "m" ] ~doc:"Print a satisfying assignment")

let proof_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "proof" ] ~docv:"FILE"
        ~doc:
          "Write a DRUP proof of an UNSAT answer to $(docv) (learned \
           clauses, deletions and the final empty clause; checkable with \
           standard DRUP checkers)")

let check =
  Arg.(
    value & flag
    & info [ "check" ]
        ~doc:
          "Verify the answer before exiting: an UNSAT proof is replayed \
           through the independent forward DRUP checker, a SAT model is \
           evaluated against every clause.  A failed check exits 1.")

let check_mode =
  let modes =
    [ ("forward", Sat.Drup_check.Forward); ("backward", Sat.Drup_check.Backward) ]
  in
  Arg.(
    value
    & opt (enum modes) Sat.Drup_check.Forward
    & info [ "check-mode" ] ~docv:"MODE"
        ~doc:
          "Proof checking mode for --check: $(b,forward) verifies every \
           step in proof order, $(b,backward) verifies only the steps the \
           conclusion depends on (cheaper on deletion-heavy proofs).")

let check_jobs =
  Arg.(
    value & opt int 1
    & info [ "check-jobs" ] ~docv:"N"
        ~doc:
          "Shard forward proof checking over $(docv) domains (round-robin \
           by step; the verdict is identical at every width).")

let exits =
  Cmd.Exit.info 1 ~doc:"on a failed --check verification."
  :: Cmd.Exit.info 2 ~doc:"on invalid input (unreadable or malformed DIMACS)."
  :: Cmd.Exit.info 10 ~doc:"when the instance is satisfiable."
  :: Cmd.Exit.info 20 ~doc:"when the instance is unsatisfiable."
  :: Cmd.Exit.defaults

let cmd =
  Cmd.v
    (Cmd.info "satsolve" ~exits ~doc:"CDCL SAT solver on DIMACS CNF")
    Term.(
      const run $ path $ model $ proof_file $ check $ check_mode $ check_jobs)

(* malformed DIMACS (Cnf.of_dimacs) and unreadable files must not
   escape as backtraces with exit 125 *)
let () =
  exit
    (try Cmd.eval ~catch:false cmd with
    | Failure msg | Sys_error msg | Invalid_argument msg ->
        Printf.eprintf "satsolve: %s\n" msg;
        2)
