(* DIMACS CNF front-end for the CDCL solver.  Exit code 10 = SAT,
   20 = UNSAT (the conventional SAT-competition codes). *)

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let run path print_model =
  let cnf = Sat.Cnf.of_dimacs (read_file path) in
  let solver = Sat.Solver.create () in
  Sat.Solver.add_cnf solver cnf;
  match Sat.Solver.solve solver with
  | Sat.Solver.Unsat ->
      print_endline "s UNSATISFIABLE";
      exit 20
  | Sat.Solver.Sat ->
      print_endline "s SATISFIABLE";
      if print_model then begin
        let buf = Buffer.create 256 in
        Buffer.add_string buf "v";
        for v = 0 to cnf.Sat.Cnf.num_vars - 1 do
          Buffer.add_string buf
            (Printf.sprintf " %d"
               (if Sat.Solver.value solver v then v + 1 else -(v + 1)))
        done;
        Buffer.add_string buf " 0";
        print_endline (Buffer.contents buf)
      end;
      let st = Sat.Solver.stats solver in
      Printf.printf "c decisions=%d propagations=%d conflicts=%d restarts=%d\n"
        st.Sat.Solver.decisions st.Sat.Solver.propagations
        st.Sat.Solver.conflicts st.Sat.Solver.restarts;
      exit 10

open Cmdliner

let path =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
       ~doc:"DIMACS CNF file")

let model =
  Arg.(value & flag & info [ "model"; "m" ] ~doc:"Print a satisfying assignment")

let cmd =
  Cmd.v
    (Cmd.info "satsolve" ~doc:"CDCL SAT solver on DIMACS CNF")
    Term.(const run $ path $ model)

let () = exit (Cmd.eval cmd)
