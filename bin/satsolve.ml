(* DIMACS CNF front-end for the CDCL solver.  Exit code 10 = SAT,
   20 = UNSAT (the conventional SAT-competition codes); with --check a
   certification failure exits 1 instead; invalid input (unreadable or
   malformed DIMACS) exits 2 with a one-line diagnostic. *)

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* space-separated DIMACS literals, e.g. "1 -3 4"; anything that is not
   a nonzero integer is invalid input (exit 2) *)
let parse_assumptions s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun tok -> tok <> "")
  |> List.map (fun tok ->
         match int_of_string_opt tok with
         | Some n when n <> 0 -> Sat.Lit.of_dimacs n
         | _ -> failwith (Printf.sprintf "invalid assumption literal %S" tok))

let run path assume core print_model proof_file check check_mode check_jobs =
  let cnf = Sat.Cnf.of_dimacs (read_file path) in
  let assumptions =
    match assume with None -> [] | Some s -> parse_assumptions s
  in
  let solver = Sat.Solver.create () in
  (* an in-memory sink serves both --proof (serialized at exit) and
     --check (replayed through the independent checker) *)
  let proof =
    if proof_file <> None || check then begin
      let p = Sat.Proof.in_memory () in
      Sat.Solver.set_proof solver (Some p);
      Some p
    end
    else None
  in
  Sat.Solver.add_cnf solver cnf;
  let result = Sat.Solver.solve ~assumptions solver in
  (match (proof_file, proof) with
  | Some file, Some p ->
      let oc = open_out file in
      output_string oc (Sat.Proof.to_string p);
      close_out oc
  | _ -> ());
  let verify () =
    if not check then true
    else
      match result with
      | Sat.Solver.Unsat -> (
          let p = Option.get proof in
          match
            Sat.Drup_check.check_unsat ~mode:check_mode ~jobs:check_jobs
              ~assumptions:(Sat.Solver.unsat_core solver) cnf
              (Sat.Proof.steps p)
          with
          | Ok () ->
              Printf.printf "c VERIFIED unsat (%d proof steps)\n"
                (Sat.Proof.num_steps p);
              true
          | Error msg ->
              Printf.printf "c NOT VERIFIED: %s\n" msg;
              false)
      | Sat.Solver.Sat ->
          let model_ok = Sat.Cnf.eval cnf (Sat.Solver.model solver) in
          let assumptions_ok =
            List.for_all
              (fun l ->
                Sat.Solver.value solver (Sat.Lit.var l) = Sat.Lit.sign l)
              assumptions
          in
          if model_ok && assumptions_ok then begin
            print_endline "c VERIFIED model";
            true
          end
          else begin
            Printf.printf "c NOT VERIFIED: model violates %s\n"
              (if model_ok then "an assumption" else "a clause");
            false
          end
  in
  match result with
  | Sat.Solver.Unsat ->
      print_endline "s UNSATISFIABLE";
      if core then begin
        (* the failed-assumption core, sorted by variable — deterministic;
           a bare "0" means the clause set is unsatisfiable outright *)
        let lits =
          List.map Sat.Lit.to_dimacs (Sat.Solver.unsat_core solver)
          |> List.sort (fun a b -> compare (abs a, a) (abs b, b))
        in
        Printf.printf "c core:%s 0\n"
          (String.concat "" (List.map (Printf.sprintf " %d") lits))
      end;
      exit (if verify () then 20 else 1)
  | Sat.Solver.Sat ->
      print_endline "s SATISFIABLE";
      if print_model then begin
        let buf = Buffer.create 256 in
        Buffer.add_string buf "v";
        for v = 0 to cnf.Sat.Cnf.num_vars - 1 do
          Buffer.add_string buf
            (Printf.sprintf " %d"
               (if Sat.Solver.value solver v then v + 1 else -(v + 1)))
        done;
        Buffer.add_string buf " 0";
        print_endline (Buffer.contents buf)
      end;
      let st = Sat.Solver.stats solver in
      Printf.printf "c decisions=%d propagations=%d conflicts=%d restarts=%d\n"
        st.Sat.Solver.decisions st.Sat.Solver.propagations
        st.Sat.Solver.conflicts st.Sat.Solver.restarts;
      exit (if verify () then 10 else 1)

open Cmdliner

let path =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
       ~doc:"DIMACS CNF file")

let model =
  Arg.(value & flag & info [ "model"; "m" ] ~doc:"Print a satisfying assignment")

let assume =
  Arg.(
    value
    & opt (some string) None
    & info [ "assume" ] ~docv:"LITS"
        ~doc:
          "Solve under assumptions: space-separated DIMACS literals, e.g. \
           $(b,\"1 -3 4\").  An UNSAT answer then means unsatisfiable \
           under the assumptions; see $(b,--core).")

let core =
  Arg.(
    value & flag
    & info [ "core" ]
        ~doc:
          "After an UNSAT answer, print the failed-assumption core as a \
           $(b,c core:) comment line (the subset of $(b,--assume) literals \
           the refutation charged, sorted by variable, 0-terminated; a \
           bare 0 means the clause set is unsatisfiable outright).")

let proof_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "proof" ] ~docv:"FILE"
        ~doc:
          "Write a DRUP proof of an UNSAT answer to $(docv) (learned \
           clauses, deletions and the final empty clause; checkable with \
           standard DRUP checkers)")

let check =
  Arg.(
    value & flag
    & info [ "check" ]
        ~doc:
          "Verify the answer before exiting: an UNSAT proof is replayed \
           through the independent forward DRUP checker, a SAT model is \
           evaluated against every clause.  A failed check exits 1.")

let check_mode =
  let modes =
    [ ("forward", Sat.Drup_check.Forward); ("backward", Sat.Drup_check.Backward) ]
  in
  Arg.(
    value
    & opt (enum modes) Sat.Drup_check.Forward
    & info [ "check-mode" ] ~docv:"MODE"
        ~doc:
          "Proof checking mode for --check: $(b,forward) verifies every \
           step in proof order, $(b,backward) verifies only the steps the \
           conclusion depends on (cheaper on deletion-heavy proofs).")

let check_jobs =
  Arg.(
    value & opt int 1
    & info [ "check-jobs" ] ~docv:"N"
        ~doc:
          "Shard forward proof checking over $(docv) domains (round-robin \
           by step; the verdict is identical at every width).")

let exits =
  Cmd.Exit.info 1 ~doc:"on a failed --check verification."
  :: Cmd.Exit.info 2 ~doc:"on invalid input (unreadable or malformed DIMACS)."
  :: Cmd.Exit.info 10 ~doc:"when the instance is satisfiable."
  :: Cmd.Exit.info 20 ~doc:"when the instance is unsatisfiable."
  :: Cmd.Exit.defaults

let cmd =
  Cmd.v
    (Cmd.info "satsolve" ~exits ~doc:"CDCL SAT solver on DIMACS CNF")
    Term.(
      const run $ path $ assume $ core $ model $ proof_file $ check
      $ check_mode $ check_jobs)

(* malformed DIMACS (Cnf.of_dimacs) and unreadable files must not
   escape as backtraces with exit 125 *)
let () =
  exit
    (try Cmd.eval ~catch:false cmd with
    | Failure msg | Sys_error msg | Invalid_argument msg ->
        Printf.eprintf "satsolve: %s\n" msg;
        2)
